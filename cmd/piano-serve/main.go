// Command piano-serve demonstrates the batched multi-session
// authentication service: a long-lived piano.Service absorbing a burst of
// concurrent sessions from many device pairs, with all signal-detection
// work batched through one shared worker pool.
//
// It runs the same workload twice — first as a serial loop over the
// classic one-pairing Deployment path, then as concurrent sessions through
// the Service — verifies the decisions agree session by session (the
// service's bit-identity promise), and reports both throughputs.
//
// The process shuts down gracefully on SIGINT/SIGTERM: admission stops,
// in-flight sessions are cancelled cooperatively and drained under
// -drain-timeout, and the shed counts are reported by failure type.
// -chaos arms the fault-injection registry (seeded by -chaos-seed) so the
// hardened failure paths — admission stalls, session panics, slow scans —
// can be watched from the command line.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"github.com/acoustic-auth/piano"
	"github.com/acoustic-auth/piano/internal/faultinject"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "piano-serve:", err)
		os.Exit(1)
	}
}

// run wires OS signals to the cancellable body: SIGINT/SIGTERM stop
// admission and start the drain.
func run(w io.Writer, args []string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runCtx(ctx, w, args)
}

// workload builds one session request per simulated user: device pairs at
// staggered distances around the threshold, distinct clock skews and
// seeds.
func workload(sessions int) []piano.AuthRequest {
	reqs := make([]piano.AuthRequest, sessions)
	for i := range reqs {
		dist := 0.3 + 0.15*float64(i%10)
		reqs[i] = piano.AuthRequest{
			Auth:  piano.DeviceSpec{Name: fmt.Sprintf("hub-%d", i), X: 0, Y: 0, ClockSkewPPM: float64(5 + i%25)},
			Vouch: piano.DeviceSpec{Name: fmt.Sprintf("watch-%d", i), X: dist, Y: 0, ClockSkewPPM: -float64(3 + i%20)},
			Seed:  int64(1000 + i),
		}
	}
	return reqs
}

// shedCategory buckets a failed session for the shutdown/chaos report.
func shedCategory(err error) string {
	switch {
	case errors.Is(err, piano.ErrOverloaded):
		return "overloaded"
	case errors.Is(err, piano.ErrClosed):
		return "closed"
	case errors.Is(err, piano.ErrInternal):
		return "internal"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "canceled"
	default:
		return "other"
	}
}

// runStreamDemo drives the online session API with simulated live
// microphones: each role's audio arrives in chunk-ms chunks at stream-pace
// times real time, and the session decides the moment both recordings have
// revealed their signals — while the tails are still "being recorded". For
// every session it verifies the early decision against the batch path and
// reports the time-to-decision both ways.
func runStreamDemo(ctx context.Context, w io.Writer, reqs []piano.AuthRequest, workers int, pace float64, chunkMS int) error {
	if chunkMS <= 0 {
		return fmt.Errorf("chunk-ms must be positive, got %d", chunkMS)
	}
	svcCfg := piano.DefaultServiceConfig()
	svcCfg.Workers = workers
	svc, err := piano.NewService(svcCfg)
	if err != nil {
		return err
	}
	defer svc.Close()

	// The session devices' nominal sampling rate (piano.DeviceSpec pairs
	// run at the prototype's 44.1 kHz).
	const rate = 44100.0
	chunk := int(rate * float64(chunkMS) / 1000)
	fmt.Fprintf(w, "piano-serve -stream: %d sessions, %d ms chunks (%d samples), pace %gx real time\n\n",
		len(reqs), chunkMS, chunk, pace)

	roles := []piano.Role{piano.RoleAuth, piano.RoleVouch}
	var sumAudio, sumFull, sumStreamWall, sumBatchWall float64
	done := 0
	for i, req := range reqs {
		if ctx.Err() != nil {
			break
		}
		// Batch reference: the decision and its wall-clock scan time once
		// the full recording exists.
		batchStart := time.Now()
		ref, err := svc.Authenticate(req)
		if err != nil {
			return err
		}
		batchWall := time.Since(batchStart)

		sess, err := svc.OpenSessionContext(ctx, req)
		if err != nil {
			if ctx.Err() != nil {
				break
			}
			return err
		}
		at := map[piano.Role]int{}
		start := time.Now()
		var dec *piano.Decision
		for dec == nil {
			if pace > 0 {
				time.Sleep(time.Duration(float64(chunkMS) / pace * float64(time.Millisecond)))
			}
			fedAny := false
			for _, role := range roles {
				rec := sess.Recording(role)
				if at[role] >= len(rec) {
					continue
				}
				end := at[role] + chunk
				if end > len(rec) {
					end = len(rec)
				}
				if err := sess.Feed(role, rec[at[role]:end]); err != nil {
					if ctx.Err() != nil {
						fmt.Fprintf(w, "interrupted: %d/%d streamed sessions completed\n", done, len(reqs))
						return nil
					}
					return err
				}
				at[role] = end
				fedAny = true
			}
			d, need, err := sess.TryResult()
			if err != nil {
				if ctx.Err() != nil {
					fmt.Fprintf(w, "interrupted: %d/%d streamed sessions completed\n", done, len(reqs))
					return nil
				}
				return err
			}
			if need == 0 {
				dec = d
			} else if !fedAny {
				return fmt.Errorf("session %d: undecided after the full feed (need %d)", i, need)
			}
		}
		streamWall := time.Since(start)

		if dec.Granted != ref.Granted || dec.Reason != ref.Reason ||
			math.Float64bits(dec.DistanceM) != math.Float64bits(ref.DistanceM) {
			return fmt.Errorf("session %d: streamed decision %+v diverged from batch %+v", i, dec, ref)
		}

		audioSec := math.Max(float64(at[piano.RoleAuth]), float64(at[piano.RoleVouch])) / rate
		fullSec := math.Max(float64(len(sess.Recording(piano.RoleAuth))), float64(len(sess.Recording(piano.RoleVouch)))) / rate
		sumAudio += audioSec
		sumFull += fullSec
		sumStreamWall += streamWall.Seconds()
		sumBatchWall += batchWall.Seconds()
		done++
		fmt.Fprintf(w, "  session %2d: %-45s decided on %4.0f of %4.0f ms of audio (%.0f%%)\n",
			i, dec.Reason, audioSec*1e3, fullSec*1e3, 100*audioSec/fullSec)
	}
	if ctx.Err() != nil && done < len(reqs) {
		fmt.Fprintf(w, "interrupted: %d/%d streamed sessions completed\n", done, len(reqs))
		return nil
	}

	if done == 0 {
		fmt.Fprintln(w, "no sessions to stream")
		return nil
	}
	n := float64(done)
	fmt.Fprintf(w, "\nall %d streamed decisions bit-identical to the batch path\n", done)
	fmt.Fprintf(w, "time-to-decision (audio):  streaming %6.0f ms avg vs %6.0f ms full recording (%.0f%% saved)\n",
		sumAudio/n*1e3, sumFull/n*1e3, 100*(1-sumAudio/sumFull))
	fmt.Fprintf(w, "wall clock per session:    streaming %6.1f ms avg (paced %gx), batch scan-after-the-fact %6.1f ms\n",
		sumStreamWall/n*1e3, pace, sumBatchWall/n*1e3)
	fmt.Fprintln(w, "\n(a batch deployment must wait out the whole recording before scanning;")
	fmt.Fprintln(w, " the streaming session scans as audio arrives and decides at the protocol")
	fmt.Fprintln(w, " horizon — see ARCHITECTURE.md \"Online session\" and BENCH_online.json)")
	return nil
}

func runCtx(ctx context.Context, w io.Writer, args []string) error {
	fs := flag.NewFlagSet("piano-serve", flag.ContinueOnError)
	sessions := fs.Int("sessions", 8, "number of authentication sessions in the burst")
	workers := fs.Int("workers", 0, "detect worker pool size (0 = GOMAXPROCS)")
	drainTimeout := fs.Duration("drain-timeout", 5*time.Second, "how long shutdown waits for in-flight sessions to drain")
	chaos := fs.Bool("chaos", false, "inject faults (admission stalls, session panics, slow scans) into the service pass")
	chaosSeed := fs.Int64("chaos-seed", 42, "fault-injection RNG seed (with -chaos)")
	stream := fs.Bool("stream", false, "run the online streaming demo: chunked live-microphone arrival, decide before the recording ends")
	streamPace := fs.Float64("stream-pace", 1.0, "audio arrival speed as a multiple of real time (0 = feed as fast as possible; with -stream)")
	chunkMS := fs.Int("chunk-ms", 20, "simulated microphone chunk size in milliseconds (with -stream)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	reqs := workload(*sessions)

	if *stream {
		return runStreamDemo(ctx, w, reqs, *workers, *streamPace, *chunkMS)
	}

	fmt.Fprintf(w, "piano-serve: %d sessions, %d cores\n\n", len(reqs), runtime.GOMAXPROCS(0))

	// Reference pass: the classic serial path, one Deployment per pairing.
	// An interrupt truncates the workload so the service pass compares
	// against exactly the sessions that have references.
	serial := make([]*piano.Decision, 0, len(reqs))
	serialStart := time.Now()
	for _, req := range reqs {
		if ctx.Err() != nil {
			break
		}
		cfg := piano.DefaultConfig()
		cfg.Seed = req.Seed
		dep, err := piano.NewDeployment(cfg, req.Auth, req.Vouch)
		if err != nil {
			return err
		}
		dec, err := dep.Authenticate()
		if err != nil {
			return err
		}
		serial = append(serial, dec)
	}
	serialDur := time.Since(serialStart)
	if len(serial) < len(reqs) {
		fmt.Fprintf(w, "interrupted: %d/%d serial sessions completed; skipping the service pass\n",
			len(serial), len(reqs))
		return nil
	}

	if *chaos {
		faultinject.Enable(*chaosSeed)
		defer faultinject.Disable()
		faultinject.Arm(faultinject.SiteServiceAcquire, faultinject.Fault{
			Action: faultinject.ActDelay, Delay: 2 * time.Millisecond, Prob: 0.3,
		})
		faultinject.Arm(faultinject.SiteServiceSession, faultinject.Fault{
			Action: faultinject.ActPanic, Prob: 0.2,
		})
		faultinject.Arm(faultinject.SiteDetectBlock, faultinject.Fault{
			Action: faultinject.ActDelay, Delay: 200 * time.Microsecond, Prob: 0.01, Skip: 10,
		})
		fmt.Fprintf(w, "chaos: fault injection armed (seed %d): admission stalls, session panics, slow scans\n\n", *chaosSeed)
	}

	// Service pass: same sessions, all in flight at once, each under the
	// process context so SIGINT/SIGTERM cancels them cooperatively.
	svcCfg := piano.DefaultServiceConfig()
	svcCfg.Workers = *workers
	svcCfg.MaxSessions = len(reqs)
	svc, err := piano.NewService(svcCfg)
	if err != nil {
		return err
	}

	batched := make([]*piano.Decision, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	svcStart := time.Now()
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			batched[i], errs[i] = svc.AuthenticateContext(ctx, reqs[i])
		}(i)
	}
	wg.Wait()
	svcDur := time.Since(svcStart)

	// Graceful shutdown: Close stops admission and drains whatever is
	// still in flight; the drain itself is bounded by -drain-timeout.
	drained := make(chan struct{})
	go func() {
		svc.Close()
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(*drainTimeout):
		fmt.Fprintf(w, "drain deadline (%v) exceeded; exiting with sessions still in flight\n", *drainTimeout)
	}

	interrupted := ctx.Err() != nil
	shed := map[string]int{}
	granted, completed := 0, 0
	for i, dec := range batched {
		if errs[i] != nil {
			if !interrupted && !*chaos {
				return errs[i]
			}
			shed[shedCategory(errs[i])]++
			continue
		}
		ref := serial[i]
		if dec.Granted != ref.Granted || dec.Reason != ref.Reason ||
			math.Float64bits(dec.DistanceM) != math.Float64bits(ref.DistanceM) {
			return fmt.Errorf("session %d: service %+v diverged from serial %+v", i, dec, ref)
		}
		completed++
		if dec.Granted {
			granted++
		}
		fmt.Fprintf(w, "  session %2d: %-45s", i, dec.Reason)
		if dec.DistanceM != 0 {
			fmt.Fprintf(w, " (%.2f m)", dec.DistanceM)
		}
		fmt.Fprintln(w)
	}

	if len(shed) > 0 {
		fmt.Fprintf(w, "\nshed %d/%d sessions:", len(reqs)-completed, len(reqs))
		for _, cat := range []string{"overloaded", "closed", "internal", "canceled", "other"} {
			if n := shed[cat]; n > 0 {
				fmt.Fprintf(w, " %s=%d", cat, n)
			}
		}
		fmt.Fprintln(w)
	}
	if interrupted {
		fmt.Fprintf(w, "interrupted: admission stopped, %d in-flight sessions drained\n", completed)
		return nil
	}

	serialRate := float64(len(reqs)) / serialDur.Seconds()
	svcRate := float64(len(reqs)) / svcDur.Seconds()
	fmt.Fprintf(w, "\n%d/%d granted; every completed session bit-identical to its serial run\n", granted, completed)
	fmt.Fprintf(w, "serial loop:        %8.1f ms total, %6.2f sessions/s\n",
		serialDur.Seconds()*1e3, serialRate)
	fmt.Fprintf(w, "batched service:    %8.1f ms total, %6.2f sessions/s (%.2fx)\n",
		svcDur.Seconds()*1e3, svcRate, svcRate/serialRate)
	fmt.Fprintln(w, "\n(the speedup scales with cores: sessions overlap through the shared")
	fmt.Fprintln(w, " worker pool, so a 1-core machine shows ~1x and an 8-core machine")
	fmt.Fprintln(w, " approaches the core count; see PERFORMANCE.md)")
	return nil
}
