// Command piano-serve demonstrates the batched multi-session
// authentication service: a long-lived piano.Service absorbing a burst of
// concurrent sessions from many device pairs, with all signal-detection
// work batched through one shared worker pool.
//
// It runs the same workload twice — first as a serial loop over the
// classic one-pairing Deployment path, then as concurrent sessions through
// the Service — verifies the decisions agree session by session (the
// service's bit-identity promise), and reports both throughputs.
//
// The process shuts down gracefully on SIGINT/SIGTERM: admission stops,
// in-flight sessions are cancelled cooperatively and drained under
// -drain-timeout, and the shed counts are reported by failure type.
// -chaos arms the fault-injection registry (seeded by -chaos-seed) so the
// hardened failure paths — admission stalls, session panics, slow scans —
// can be watched from the command line.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"github.com/acoustic-auth/piano"
	"github.com/acoustic-auth/piano/internal/faultinject"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "piano-serve:", err)
		os.Exit(1)
	}
}

// run wires OS signals to the cancellable body: SIGINT/SIGTERM stop
// admission and start the drain.
func run(w io.Writer, args []string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runCtx(ctx, w, args)
}

// workload builds one session request per simulated user: device pairs at
// staggered distances around the threshold, distinct clock skews and
// seeds.
func workload(sessions int) []piano.AuthRequest {
	reqs := make([]piano.AuthRequest, sessions)
	for i := range reqs {
		dist := 0.3 + 0.15*float64(i%10)
		reqs[i] = piano.AuthRequest{
			Auth:  piano.DeviceSpec{Name: fmt.Sprintf("hub-%d", i), X: 0, Y: 0, ClockSkewPPM: float64(5 + i%25)},
			Vouch: piano.DeviceSpec{Name: fmt.Sprintf("watch-%d", i), X: dist, Y: 0, ClockSkewPPM: -float64(3 + i%20)},
			Seed:  int64(1000 + i),
		}
	}
	return reqs
}

// shedCategory buckets a failed session for the shutdown/chaos report.
func shedCategory(err error) string {
	switch {
	case errors.Is(err, piano.ErrOverloaded):
		return "overloaded"
	case errors.Is(err, piano.ErrClosed):
		return "closed"
	case errors.Is(err, piano.ErrInternal):
		return "internal"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "canceled"
	default:
		return "other"
	}
}

func runCtx(ctx context.Context, w io.Writer, args []string) error {
	fs := flag.NewFlagSet("piano-serve", flag.ContinueOnError)
	sessions := fs.Int("sessions", 8, "number of authentication sessions in the burst")
	workers := fs.Int("workers", 0, "detect worker pool size (0 = GOMAXPROCS)")
	drainTimeout := fs.Duration("drain-timeout", 5*time.Second, "how long shutdown waits for in-flight sessions to drain")
	chaos := fs.Bool("chaos", false, "inject faults (admission stalls, session panics, slow scans) into the service pass")
	chaosSeed := fs.Int64("chaos-seed", 42, "fault-injection RNG seed (with -chaos)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	reqs := workload(*sessions)

	fmt.Fprintf(w, "piano-serve: %d sessions, %d cores\n\n", len(reqs), runtime.GOMAXPROCS(0))

	// Reference pass: the classic serial path, one Deployment per pairing.
	// An interrupt truncates the workload so the service pass compares
	// against exactly the sessions that have references.
	serial := make([]*piano.Decision, 0, len(reqs))
	serialStart := time.Now()
	for _, req := range reqs {
		if ctx.Err() != nil {
			break
		}
		cfg := piano.DefaultConfig()
		cfg.Seed = req.Seed
		dep, err := piano.NewDeployment(cfg, req.Auth, req.Vouch)
		if err != nil {
			return err
		}
		dec, err := dep.Authenticate()
		if err != nil {
			return err
		}
		serial = append(serial, dec)
	}
	serialDur := time.Since(serialStart)
	if len(serial) < len(reqs) {
		fmt.Fprintf(w, "interrupted: %d/%d serial sessions completed; skipping the service pass\n",
			len(serial), len(reqs))
		return nil
	}

	if *chaos {
		faultinject.Enable(*chaosSeed)
		defer faultinject.Disable()
		faultinject.Arm(faultinject.SiteServiceAcquire, faultinject.Fault{
			Action: faultinject.ActDelay, Delay: 2 * time.Millisecond, Prob: 0.3,
		})
		faultinject.Arm(faultinject.SiteServiceSession, faultinject.Fault{
			Action: faultinject.ActPanic, Prob: 0.2,
		})
		faultinject.Arm(faultinject.SiteDetectBlock, faultinject.Fault{
			Action: faultinject.ActDelay, Delay: 200 * time.Microsecond, Prob: 0.01, Skip: 10,
		})
		fmt.Fprintf(w, "chaos: fault injection armed (seed %d): admission stalls, session panics, slow scans\n\n", *chaosSeed)
	}

	// Service pass: same sessions, all in flight at once, each under the
	// process context so SIGINT/SIGTERM cancels them cooperatively.
	svcCfg := piano.DefaultServiceConfig()
	svcCfg.Workers = *workers
	svcCfg.MaxSessions = len(reqs)
	svc, err := piano.NewService(svcCfg)
	if err != nil {
		return err
	}

	batched := make([]*piano.Decision, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	svcStart := time.Now()
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			batched[i], errs[i] = svc.AuthenticateContext(ctx, reqs[i])
		}(i)
	}
	wg.Wait()
	svcDur := time.Since(svcStart)

	// Graceful shutdown: Close stops admission and drains whatever is
	// still in flight; the drain itself is bounded by -drain-timeout.
	drained := make(chan struct{})
	go func() {
		svc.Close()
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(*drainTimeout):
		fmt.Fprintf(w, "drain deadline (%v) exceeded; exiting with sessions still in flight\n", *drainTimeout)
	}

	interrupted := ctx.Err() != nil
	shed := map[string]int{}
	granted, completed := 0, 0
	for i, dec := range batched {
		if errs[i] != nil {
			if !interrupted && !*chaos {
				return errs[i]
			}
			shed[shedCategory(errs[i])]++
			continue
		}
		ref := serial[i]
		if dec.Granted != ref.Granted || dec.Reason != ref.Reason ||
			math.Float64bits(dec.DistanceM) != math.Float64bits(ref.DistanceM) {
			return fmt.Errorf("session %d: service %+v diverged from serial %+v", i, dec, ref)
		}
		completed++
		if dec.Granted {
			granted++
		}
		fmt.Fprintf(w, "  session %2d: %-45s", i, dec.Reason)
		if dec.DistanceM != 0 {
			fmt.Fprintf(w, " (%.2f m)", dec.DistanceM)
		}
		fmt.Fprintln(w)
	}

	if len(shed) > 0 {
		fmt.Fprintf(w, "\nshed %d/%d sessions:", len(reqs)-completed, len(reqs))
		for _, cat := range []string{"overloaded", "closed", "internal", "canceled", "other"} {
			if n := shed[cat]; n > 0 {
				fmt.Fprintf(w, " %s=%d", cat, n)
			}
		}
		fmt.Fprintln(w)
	}
	if interrupted {
		fmt.Fprintf(w, "interrupted: admission stopped, %d in-flight sessions drained\n", completed)
		return nil
	}

	serialRate := float64(len(reqs)) / serialDur.Seconds()
	svcRate := float64(len(reqs)) / svcDur.Seconds()
	fmt.Fprintf(w, "\n%d/%d granted; every completed session bit-identical to its serial run\n", granted, completed)
	fmt.Fprintf(w, "serial loop:        %8.1f ms total, %6.2f sessions/s\n",
		serialDur.Seconds()*1e3, serialRate)
	fmt.Fprintf(w, "batched service:    %8.1f ms total, %6.2f sessions/s (%.2fx)\n",
		svcDur.Seconds()*1e3, svcRate, svcRate/serialRate)
	fmt.Fprintln(w, "\n(the speedup scales with cores: sessions overlap through the shared")
	fmt.Fprintln(w, " worker pool, so a 1-core machine shows ~1x and an 8-core machine")
	fmt.Fprintln(w, " approaches the core count; see PERFORMANCE.md)")
	return nil
}
