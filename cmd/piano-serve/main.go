// Command piano-serve demonstrates the batched multi-session
// authentication service: a long-lived piano.Service absorbing a burst of
// concurrent sessions from many device pairs, with all signal-detection
// work batched through one shared worker pool.
//
// It runs the same workload twice — first as a serial loop over the
// classic one-pairing Deployment path, then as concurrent sessions through
// the Service — verifies the decisions agree session by session (the
// service's bit-identity promise), and reports both throughputs.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sync"
	"time"

	"github.com/acoustic-auth/piano"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "piano-serve:", err)
		os.Exit(1)
	}
}

// workload builds one session request per simulated user: device pairs at
// staggered distances around the threshold, distinct clock skews and
// seeds.
func workload(sessions int) []piano.AuthRequest {
	reqs := make([]piano.AuthRequest, sessions)
	for i := range reqs {
		dist := 0.3 + 0.15*float64(i%10)
		reqs[i] = piano.AuthRequest{
			Auth:  piano.DeviceSpec{Name: fmt.Sprintf("hub-%d", i), X: 0, Y: 0, ClockSkewPPM: float64(5 + i%25)},
			Vouch: piano.DeviceSpec{Name: fmt.Sprintf("watch-%d", i), X: dist, Y: 0, ClockSkewPPM: -float64(3 + i%20)},
			Seed:  int64(1000 + i),
		}
	}
	return reqs
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("piano-serve", flag.ContinueOnError)
	sessions := fs.Int("sessions", 8, "number of authentication sessions in the burst")
	workers := fs.Int("workers", 0, "detect worker pool size (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	reqs := workload(*sessions)

	fmt.Fprintf(w, "piano-serve: %d sessions, %d cores\n\n", len(reqs), runtime.GOMAXPROCS(0))

	// Reference pass: the classic serial path, one Deployment per pairing.
	serial := make([]*piano.Decision, len(reqs))
	serialStart := time.Now()
	for i, req := range reqs {
		cfg := piano.DefaultConfig()
		cfg.Seed = req.Seed
		dep, err := piano.NewDeployment(cfg, req.Auth, req.Vouch)
		if err != nil {
			return err
		}
		dec, err := dep.Authenticate()
		if err != nil {
			return err
		}
		serial[i] = dec
	}
	serialDur := time.Since(serialStart)

	// Service pass: same sessions, all in flight at once.
	svcCfg := piano.DefaultServiceConfig()
	svcCfg.Workers = *workers
	svcCfg.MaxSessions = len(reqs)
	svc, err := piano.NewService(svcCfg)
	if err != nil {
		return err
	}
	defer svc.Close()

	batched := make([]*piano.Decision, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	svcStart := time.Now()
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			batched[i], errs[i] = svc.Authenticate(reqs[i])
		}(i)
	}
	wg.Wait()
	svcDur := time.Since(svcStart)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	granted := 0
	for i, dec := range batched {
		ref := serial[i]
		if dec.Granted != ref.Granted || dec.Reason != ref.Reason ||
			math.Float64bits(dec.DistanceM) != math.Float64bits(ref.DistanceM) {
			return fmt.Errorf("session %d: service %+v diverged from serial %+v", i, dec, ref)
		}
		if dec.Granted {
			granted++
		}
		fmt.Fprintf(w, "  session %2d: %-45s", i, dec.Reason)
		if dec.DistanceM != 0 {
			fmt.Fprintf(w, " (%.2f m)", dec.DistanceM)
		}
		fmt.Fprintln(w)
	}

	serialRate := float64(len(reqs)) / serialDur.Seconds()
	svcRate := float64(len(reqs)) / svcDur.Seconds()
	fmt.Fprintf(w, "\n%d/%d granted; every session bit-identical to its serial run\n", granted, len(reqs))
	fmt.Fprintf(w, "serial loop:        %8.1f ms total, %6.2f sessions/s\n",
		serialDur.Seconds()*1e3, serialRate)
	fmt.Fprintf(w, "batched service:    %8.1f ms total, %6.2f sessions/s (%.2fx)\n",
		svcDur.Seconds()*1e3, svcRate, svcRate/serialRate)
	fmt.Fprintln(w, "\n(the speedup scales with cores: sessions overlap through the shared")
	fmt.Fprintln(w, " worker pool, so a 1-core machine shows ~1x and an 8-core machine")
	fmt.Fprintln(w, " approaches the core count; see PERFORMANCE.md)")
	return nil
}
