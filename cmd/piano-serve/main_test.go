package main

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"github.com/acoustic-auth/piano/internal/faultinject"
)

func TestRunServeSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-sessions", "4", "-workers", "2"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"bit-identical", "serial loop", "batched service", "sessions/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunServeStreamSmoke: the -stream demo must decide every session early
// (before the full recording is fed), match the batch path, and say so.
func TestRunServeStreamSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-stream", "-stream-pace", "0", "-sessions", "3", "-workers", "2"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"bit-identical to the batch path", "time-to-decision", "% saved"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "(100%)") {
		t.Errorf("a session only decided at the full recording:\n%s", out)
	}
}

// TestRunServeStreamInterrupt: cancellation mid-stream must report and exit
// cleanly, not error.
func TestRunServeStreamInterrupt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	if err := runCtx(ctx, &buf, []string{"-stream", "-stream-pace", "0", "-sessions", "2"}); err != nil {
		t.Fatalf("interrupted stream run errored: %v\n%s", err, buf.String())
	}
}

func TestRunServeBadFlags(t *testing.T) {
	if err := run(&bytes.Buffer{}, []string{"-sessions", "x"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestRunServeChaos: the -chaos flag must arm fault injection, tolerate the
// injected failures, and report the shed counts by category.
func TestRunServeChaos(t *testing.T) {
	var buf bytes.Buffer
	if err := runCtx(context.Background(), &buf, []string{"-sessions", "6", "-workers", "2", "-chaos", "-chaos-seed", "7"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"chaos: fault injection armed", "sessions/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunServeInterruptDrains: a cancellation landing mid-burst (what
// SIGINT/SIGTERM delivers through signal.NotifyContext) must stop
// admission, drain, and report instead of erroring out.
func TestRunServeInterruptDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	faultinject.Enable(1)
	defer faultinject.Disable()
	// The serial pass never fires service sites, so this cancels the run
	// deterministically during the service pass: on the second admitted
	// session.
	faultinject.Arm(faultinject.SiteServiceSession, faultinject.Fault{
		Action: faultinject.ActHook, Skip: 1, Times: 1, Hook: cancel,
	})
	var buf bytes.Buffer
	if err := runCtx(ctx, &buf, []string{"-sessions", "5", "-workers", "2"}); err != nil {
		t.Fatalf("interrupted run errored: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "interrupted: admission stopped") {
		t.Errorf("output missing drain report:\n%s", out)
	}
	if faultinject.Hits(faultinject.SiteServiceSession) != 1 {
		t.Error("cancellation hook never fired during the service pass")
	}
}

// TestRunServePreInterrupted: a process already signalled before the burst
// skips the service pass entirely.
func TestRunServePreInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	if err := runCtx(ctx, &buf, []string{"-sessions", "3"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "skipping the service pass") {
		t.Errorf("output missing early-interrupt report:\n%s", buf.String())
	}
}
