package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunServeSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-sessions", "4", "-workers", "2"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"bit-identical", "serial loop", "batched service", "sessions/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunServeBadFlags(t *testing.T) {
	if err := run(&bytes.Buffer{}, []string{"-sessions", "x"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
