package main

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"github.com/acoustic-auth/piano/internal/faultinject"
)

func TestRunServeSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-sessions", "4", "-workers", "2"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"bit-identical", "serial loop", "batched service", "sessions/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunServeStreamSmoke: the -stream demo must decide sessions early
// (before the full recording is fed), match the batch path, and say so.
// With bursty arrival a single underrun backlog can overshoot the horizon
// to the very end of one recording, so the early-decision check is "not
// every session at 100%" rather than "none".
func TestRunServeStreamSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-stream", "-stream-pace", "0", "-sessions", "3", "-workers", "2"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"bit-identical to the batch path", "time-to-decision", "% saved", "lifecycle watchdog"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "(100%)") >= 3 {
		t.Errorf("every session only decided at the full recording:\n%s", out)
	}
}

// TestRunServeStreamAbandon: with -abandon-rate 1 every client vanishes
// mid-feed; the demo must leave the sessions to the lifecycle watchdog,
// drain them with typed shed errors (or late decisions for clients that
// had already fed past the horizon), and report the counts.
func TestRunServeStreamAbandon(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, []string{
		"-stream", "-stream-pace", "0", "-sessions", "2", "-workers", "2",
		"-abandon-rate", "1", "-drain-timeout", "30s",
	})
	if err != nil {
		t.Fatalf("abandon run errored: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"left to the watchdog", "draining 2 unresolved sessions"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "stalled=") && !strings.Contains(out, "decided during the drain") {
		t.Errorf("no typed shed report or late decision after abandons:\n%s", out)
	}
	if strings.Contains(out, "closed=") {
		t.Errorf("a session hit the drain deadline instead of resolving typed:\n%s", out)
	}
}

// TestRunServeDrainWindowReported: the batch summary must report the drain
// as its own measured window and compute throughput over completed sessions
// in the burst window only — the regression was folding drain time (and, on
// an early-expiring budget, sessions that never finished) into one
// whole-run figure.
func TestRunServeDrainWindowReported(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-sessions", "3", "-workers", "2"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"drain: quiesced in", "ms burst", "sessions/s over 3 completed"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "ms total,  ") && strings.Contains(out, "batched service") &&
		!strings.Contains(out, "ms burst") {
		t.Errorf("batched-service line reverted to whole-run wall time:\n%s", out)
	}
}

// TestRunServeStreamDrainDeadline: when -drain-timeout expires with
// sessions still unresolved, the report must split the populations — how
// many drained inside the window vs how many the deadline abandoned — not
// blend them into one wall-time figure.
func TestRunServeStreamDrainDeadline(t *testing.T) {
	var buf bytes.Buffer
	// -idle-timeout 30s parks the watchdog so neither abandoned session can
	// be reaped as stalled before the 1 ms drain budget force-closes it —
	// otherwise the watchdog races the deadline on a slow (-race) run.
	err := run(&buf, []string{
		"-stream", "-stream-pace", "0", "-sessions", "2", "-workers", "2",
		"-abandon-rate", "1", "-idle-timeout", "30s", "-drain-timeout", "1ms",
	})
	if err != nil {
		t.Fatalf("deadline run errored: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "at the deadline (budget 1ms)") {
		t.Errorf("abandoned sessions not reported against the expired budget:\n%s", out)
	}
	if !strings.Contains(out, "closed=2") {
		t.Errorf("deadline-closed sessions missing from the shed report:\n%s", out)
	}
}

// TestRunServeStreamInterrupt: cancellation mid-stream must report and exit
// cleanly, not error.
func TestRunServeStreamInterrupt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	if err := runCtx(ctx, &buf, []string{"-stream", "-stream-pace", "0", "-sessions", "2"}); err != nil {
		t.Fatalf("interrupted stream run errored: %v\n%s", err, buf.String())
	}
}

func TestRunServeBadFlags(t *testing.T) {
	if err := run(&bytes.Buffer{}, []string{"-sessions", "x"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestRunServeChaos: the -chaos flag must arm fault injection, tolerate the
// injected failures, and report the shed counts by category.
func TestRunServeChaos(t *testing.T) {
	var buf bytes.Buffer
	if err := runCtx(context.Background(), &buf, []string{"-sessions", "6", "-workers", "2", "-chaos", "-chaos-seed", "7"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"chaos: fault injection armed", "sessions/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunServeInterruptDrains: a cancellation landing mid-burst (what
// SIGINT/SIGTERM delivers through signal.NotifyContext) must stop
// admission, drain, and report instead of erroring out.
func TestRunServeInterruptDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	faultinject.Enable(1)
	defer faultinject.Disable()
	// The serial pass never fires service sites, so this cancels the run
	// deterministically during the service pass: on the second admitted
	// session.
	faultinject.Arm(faultinject.SiteServiceSession, faultinject.Fault{
		Action: faultinject.ActHook, Skip: 1, Times: 1, Hook: cancel,
	})
	var buf bytes.Buffer
	if err := runCtx(ctx, &buf, []string{"-sessions", "5", "-workers", "2"}); err != nil {
		t.Fatalf("interrupted run errored: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "interrupted: admission stopped") {
		t.Errorf("output missing drain report:\n%s", out)
	}
	if faultinject.Hits(faultinject.SiteServiceSession) != 1 {
		t.Error("cancellation hook never fired during the service pass")
	}
}

// TestRunServeStreamWireClean: duplication and reordering without loss
// must be fully repaired by the frame reassembler — every session decides
// clean and bit-identical to the batch path.
func TestRunServeStreamWireClean(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, []string{
		"-stream", "-stream-pace", "0", "-sessions", "3", "-workers", "2",
		"-dup", "0.2", "-reorder", "0.3",
	})
	if err != nil {
		t.Fatalf("clean wire run errored: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"lossy transport: framed chunks",
		"3 clean (bit-identical to batch), 0 degraded",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunServeStreamWireLoss: real frame loss must surface only as
// degraded decisions (with a loss report) or typed insufficient-audio
// refusals — never a silent divergence from batch.
func TestRunServeStreamWireLoss(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, []string{
		"-stream", "-stream-pace", "0", "-sessions", "3", "-workers", "2",
		"-loss", "0.05", "-corrupt", "0.03",
	})
	if err != nil {
		t.Fatalf("lossy wire run errored: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "degraded") && !strings.Contains(out, "insufficient") {
		t.Errorf("loss left no degraded or insufficient trace in the output:\n%s", out)
	}
}

// TestRunServeWireFlagValidation: wire knobs without -stream, or outside
// [0, 1], are rejected up front.
func TestRunServeWireFlagValidation(t *testing.T) {
	if err := run(&bytes.Buffer{}, []string{"-loss", "0.1"}); err == nil || !strings.Contains(err.Error(), "require -stream") {
		t.Fatalf("-loss without -stream accepted (err %v)", err)
	}
	if err := run(&bytes.Buffer{}, []string{"-stream", "-stream-pace", "0", "-sessions", "1", "-loss", "1.5"}); err == nil {
		t.Fatal("-loss 1.5 accepted")
	}
}

// TestRunServePreInterrupted: a process already signalled before the burst
// skips the service pass entirely.
func TestRunServePreInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	if err := runCtx(ctx, &buf, []string{"-sessions", "3"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "skipping the service pass") {
		t.Errorf("output missing early-interrupt report:\n%s", buf.String())
	}
}
