package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-experiment", "tables", "-trials", "2", "-seed", "5"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "Table II") {
		t.Errorf("tables output incomplete:\n%s", out)
	}
}

func TestRunEfficiencyExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-experiment", "efficiency", "-trials", "2"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "battery") {
		t.Errorf("efficiency output incomplete:\n%s", buf.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(&bytes.Buffer{}, []string{"-experiment", "fig99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run(&bytes.Buffer{}, []string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}
