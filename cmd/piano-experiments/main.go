// Command piano-experiments regenerates every table and figure of the
// paper's evaluation (§VI), plus the ablation battery for the design
// choices called out in DESIGN.md.
//
// Usage:
//
//	piano-experiments -experiment all            # everything, paper trial counts
//	piano-experiments -experiment fig1 -trials 5 # one artifact, custom trials
//
// Experiments: fig1, fig2a, fig2b, table1, table2, wall, security,
// efficiency, ablations, all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/acoustic-auth/piano/internal/experiments"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "piano-experiments:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("piano-experiments", flag.ContinueOnError)
	experiment := fs.String("experiment", "all", "which artifact to regenerate (fig1|fig2a|fig2b|table1|table2|wall|security|efficiency|ablations|all)")
	trials := fs.Int("trials", 0, "trials per measurement point (0 = paper defaults)")
	seed := fs.Int64("seed", 1, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := experiments.Options{Trials: *trials, Seed: *seed}

	runners := map[string]func() error{
		"fig1": func() error {
			res, err := experiments.RunFig1(opts)
			if err != nil {
				return err
			}
			experiments.FprintFig1(w, res)
			return nil
		},
		"fig2a": func() error {
			res, err := experiments.RunFig2a(opts)
			if err != nil {
				return err
			}
			experiments.FprintFig2a(w, res)
			return nil
		},
		"fig2b": func() error {
			res, err := experiments.RunFig2b(opts)
			if err != nil {
				return err
			}
			experiments.FprintFig2b(w, res)
			return nil
		},
		"tables": func() error {
			res, err := experiments.RunTables(opts)
			if err != nil {
				return err
			}
			experiments.FprintTables(w, res)
			return nil
		},
		"wall": func() error {
			res, err := experiments.RunWall(opts)
			if err != nil {
				return err
			}
			experiments.FprintWall(w, res)
			return nil
		},
		"security": func() error {
			res, err := experiments.RunSecurity(opts)
			if err != nil {
				return err
			}
			experiments.FprintSecurity(w, res)
			return nil
		},
		"efficiency": func() error {
			res, err := experiments.RunEfficiency(opts)
			if err != nil {
				return err
			}
			experiments.FprintEfficiency(w, res)
			return nil
		},
		"ablations": func() error {
			res, err := experiments.RunAllAblations(opts)
			if err != nil {
				return err
			}
			for _, r := range res {
				experiments.FprintAblation(w, r)
			}
			return nil
		},
	}
	runners["table1"] = runners["tables"]
	runners["table2"] = runners["tables"]

	if *experiment == "all" {
		for _, name := range []string{"fig1", "fig2a", "fig2b", "tables", "wall", "security", "efficiency", "ablations"} {
			fmt.Fprintf(w, "==== %s ====\n", name)
			if err := runners[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	r, ok := runners[*experiment]
	if !ok {
		return fmt.Errorf("unknown experiment %q", *experiment)
	}
	return r()
}
