package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunAttackCampaign(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-trials", "2", "-seed", "5"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "guessing-based replay") || !strings.Contains(out, "all-frequency") {
		t.Errorf("attack output incomplete:\n%s", out)
	}
	// The reproduction must never report a successful spoof at defaults.
	if strings.Contains(out, "2/2 attacks succeeded") {
		t.Errorf("attacks succeeded:\n%s", out)
	}
}

func TestRunAttackBadArgs(t *testing.T) {
	if err := run(&bytes.Buffer{}, []string{"-candidates", "1"}); err == nil {
		t.Error("invalid candidate count accepted")
	}
	if err := run(&bytes.Buffer{}, []string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}
