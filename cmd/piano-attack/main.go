// Command piano-attack runs the §VI-E spoofing-attack battery against a
// deployment whose legitimate user is away, reporting per-attack success
// rates (the paper observed 0/100 for both attacks).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/acoustic-auth/piano/internal/experiments"
	"github.com/acoustic-auth/piano/internal/stats"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "piano-attack:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("piano-attack", flag.ContinueOnError)
	trials := fs.Int("trials", 100, "attack trials per campaign")
	seed := fs.Int64("seed", 1, "simulation seed")
	candidates := fs.Int("candidates", 30, "candidate frequency count N (analytic report)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	fmt.Fprintf(w, "Running %d trials per attack (victim user 6 m away, attacker 0.4 m from device)\n", *trials)
	res, err := experiments.RunSecurity(experiments.Options{Trials: *trials, Seed: *seed})
	if err != nil {
		return err
	}
	experiments.FprintSecurity(w, res)

	prob, err := stats.ReplaySuccessProbability(*candidates)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "with N=%d candidates a guessing replay succeeds with probability %.3g\n", *candidates, prob)
	return nil
}
