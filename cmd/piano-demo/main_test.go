package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunDemoOffice(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-distance", "0.8", "-env", "office", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"estimated distance", "decision", "energy"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunDemoWallDenies(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-distance", "0.8", "-wall"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "not present") {
		t.Errorf("wall demo did not deny:\n%s", buf.String())
	}
}

func TestRunDemoBadArgs(t *testing.T) {
	if err := run(&bytes.Buffer{}, []string{"-env", "moon"}); err == nil {
		t.Error("unknown environment accepted")
	}
	if err := run(&bytes.Buffer{}, []string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestParseEnv(t *testing.T) {
	for _, name := range []string{"quiet", "office", "home", "restaurant", "street"} {
		if _, err := parseEnv(name); err != nil {
			t.Errorf("parseEnv(%q): %v", name, err)
		}
	}
}
