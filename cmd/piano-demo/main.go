// Command piano-demo runs one verbose end-to-end PIANO authentication: a
// voice-powered speaker (authenticating device) and a smartwatch (vouching
// device) in a chosen environment, with a full protocol trace.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/acoustic-auth/piano"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "piano-demo:", err)
		os.Exit(1)
	}
}

func parseEnv(s string) (piano.Environment, error) {
	switch s {
	case "quiet":
		return piano.Quiet, nil
	case "office":
		return piano.Office, nil
	case "home":
		return piano.Home, nil
	case "restaurant":
		return piano.Restaurant, nil
	case "street":
		return piano.Street, nil
	default:
		return 0, fmt.Errorf("unknown environment %q", s)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("piano-demo", flag.ContinueOnError)
	dist := fs.Float64("distance", 0.8, "true distance between devices (m)")
	threshold := fs.Float64("threshold", 1.0, "authentication threshold τ (m)")
	envName := fs.String("env", "office", "environment (quiet|office|home|restaurant|street)")
	seed := fs.Int64("seed", 1, "simulation seed")
	wall := fs.Bool("wall", false, "put a wall between the devices")
	if err := fs.Parse(args); err != nil {
		return err
	}
	env, err := parseEnv(*envName)
	if err != nil {
		return err
	}

	cfg := piano.DefaultConfig()
	cfg.Environment = env
	cfg.ThresholdM = *threshold
	cfg.Seed = *seed
	cfg.TrackEnergy = true

	room := 0
	if *wall {
		room = 1
	}
	fmt.Fprintf(w, "PIANO demo: %s, true distance %.2f m, τ = %.2f m, wall=%v\n",
		env, *dist, *threshold, *wall)
	fmt.Fprintln(w, "registration: pairing devices over Bluetooth (ECDH key agreement)...")
	dep, err := piano.NewDeployment(cfg,
		piano.DeviceSpec{Name: "smart-speaker", X: 0, Y: 0, ClockSkewPPM: 14},
		piano.DeviceSpec{Name: "smartwatch", X: *dist, Y: 0, Room: room, ClockSkewPPM: -19})
	if err != nil {
		return err
	}

	fmt.Fprintln(w, "authentication: running ACTION (randomized reference signals, two-way ranging)...")
	dec, err := dep.Authenticate()
	if err != nil {
		return err
	}
	if dec.DistanceM != 0 {
		fmt.Fprintf(w, "  estimated distance: %.3f m (true %.2f m, error %.1f cm)\n",
			dec.DistanceM, *dist, (dec.DistanceM-*dist)*100)
	} else {
		fmt.Fprintln(w, "  estimated distance: ⊥ (reference signal not present)")
	}
	fmt.Fprintf(w, "  decision: %s\n", dec.Reason)
	fmt.Fprintf(w, "  modeled latency: %.2f s\n", dec.AuthTimeSec)
	rep := dep.Energy()
	fmt.Fprintf(w, "  energy: %.2f J (%s)\n", rep.TotalJoules, rep.Breakdown)
	return nil
}
