module github.com/acoustic-auth/piano

go 1.24
