package piano

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"github.com/acoustic-auth/piano/internal/faultinject"
)

// TestServicePublicValidation: the public surface rejects the parameters
// the hardening pass closed off — non-finite thresholds and unknown
// environment values.
func TestServicePublicValidation(t *testing.T) {
	svc, err := NewService(DefaultServiceConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	base := serviceRequests()[0]

	for _, tau := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1} {
		req := base
		req.ThresholdM = tau
		if _, err := svc.Authenticate(req); err == nil {
			t.Errorf("threshold %g accepted", tau)
		}
	}
	for _, env := range []Environment{-1, Street + 1, 99} {
		req := base
		req.Environment = env
		if _, err := svc.Authenticate(req); err == nil {
			t.Errorf("environment %d accepted", int(env))
		}
	}
}

// TestServicePublicCancelReturnsCtxErr: AuthenticateContext surfaces the
// caller's ctx.Err() unwrapped, so errors.Is and direct comparison both
// work, and the service keeps serving afterwards.
func TestServicePublicCancelReturnsCtxErr(t *testing.T) {
	svc, err := NewService(DefaultServiceConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	req := serviceRequests()[0]

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	faultinject.Enable(1)
	faultinject.Arm(faultinject.SiteDetectBlock, faultinject.Fault{
		Action: faultinject.ActHook, Skip: 4, Times: 1, Hook: cancel,
	})
	_, err = svc.AuthenticateContext(ctx, req)
	faultinject.Disable()
	if err != context.Canceled {
		t.Fatalf("mid-scan cancel returned %v, want context.Canceled unwrapped", err)
	}

	if _, err := svc.Authenticate(req); err != nil {
		t.Fatalf("service unusable after a canceled session: %v", err)
	}
}

// TestServicePublicOverloadAndClosed: the re-exported typed errors surface
// through the public layer — ErrOverloaded from a saturated service with a
// bounded queue wait, ErrClosed after Close.
func TestServicePublicOverloadAndClosed(t *testing.T) {
	cfg := DefaultServiceConfig()
	cfg.Workers = 1
	cfg.MaxSessions = 1
	cfg.MaxQueueWait = 20 * time.Millisecond
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	req := serviceRequests()[0]

	faultinject.Enable(1)
	release := make(chan struct{})
	entered := make(chan struct{})
	faultinject.Arm(faultinject.SiteServiceSession, faultinject.Fault{
		Action: faultinject.ActHook,
		Times:  1,
		Hook: func() {
			close(entered)
			<-release
		},
	})
	hold := make(chan error, 1)
	go func() {
		_, err := svc.Authenticate(req)
		hold <- err
	}()
	<-entered
	if _, err := svc.Authenticate(req); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated service returned %v, want ErrOverloaded", err)
	}
	close(release)
	faultinject.Disable()
	if err := <-hold; err != nil {
		t.Fatalf("slot-holding session failed: %v", err)
	}

	svc.Close()
	if _, err := svc.Authenticate(req); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed service returned %v, want ErrClosed", err)
	}
}
