package piano

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"github.com/acoustic-auth/piano/internal/acoustic"
	"github.com/acoustic-auth/piano/internal/attack"
	"github.com/acoustic-auth/piano/internal/core"
	"github.com/acoustic-auth/piano/internal/device"
	"github.com/acoustic-auth/piano/internal/energy"
)

// Environment selects the ambient-noise scenario (§VI-B of the paper).
type Environment int

// Supported environments.
const (
	Quiet Environment = iota + 1
	Office
	Home
	Restaurant
	Street
)

// String implements fmt.Stringer.
func (e Environment) String() string { return e.internal().String() }

func (e Environment) internal() acoustic.Environment {
	switch e {
	case Office:
		return acoustic.EnvOffice
	case Home:
		return acoustic.EnvHome
	case Restaurant:
		return acoustic.EnvRestaurant
	case Street:
		return acoustic.EnvStreet
	default:
		return acoustic.EnvQuiet
	}
}

// Reason explains an authentication decision.
type Reason = core.Reason

// Decision reasons (re-exported from the core implementation).
const (
	ReasonGranted                  = core.ReasonGranted
	ReasonBluetoothOutOfRange      = core.ReasonBluetoothOutOfRange
	ReasonSignalAbsent             = core.ReasonSignalAbsent
	ReasonDistanceExceedsThreshold = core.ReasonDistanceExceedsThreshold
)

// Config is the user-facing deployment configuration.
type Config struct {
	// Environment is the ambient scenario. Default: Office.
	Environment Environment
	// ThresholdM is the authentication threshold τ in meters (the
	// personalization knob). Default: 1.0.
	ThresholdM float64
	// Seed drives all simulation randomness; runs with equal seeds are
	// reproducible. Default: 1.
	Seed int64
	// TrackEnergy enables the per-authentication energy ledger.
	TrackEnergy bool
}

// DefaultConfig returns the paper's default deployment: office, τ = 1 m.
func DefaultConfig() Config {
	return Config{Environment: Office, ThresholdM: 1.0, Seed: 1}
}

// DeviceSpec describes one device's placement and hardware quirks.
type DeviceSpec struct {
	// Name identifies the device.
	Name string
	// X, Y are the position in meters.
	X, Y float64
	// Room identifies the room; devices in different rooms are separated
	// by a wall.
	Room int
	// ClockSkewPPM is the audio-crystal error (0 = ideal; phones are
	// typically within ±30 ppm).
	ClockSkewPPM float64
}

// Decision is the outcome of one authentication.
type Decision struct {
	// Granted is the access decision.
	Granted bool
	// Reason explains it.
	Reason Reason
	// DistanceM is the measured distance (0 when unmeasured/absent).
	DistanceM float64
	// AuthTimeSec is the modeled wall-clock latency on prototype
	// hardware.
	AuthTimeSec float64
	// Degraded is non-nil when the decision was made over a framed
	// session that lost audio to the transport: the surviving windows
	// still revealed the signals decisively, and this reports how much
	// was lost. Nil for batch decisions and for loss-free sessions —
	// whose decisions are bit-identical to batch.
	Degraded *Degraded
}

// Measurement is the outcome of one raw ACTION distance estimation.
type Measurement struct {
	// DistanceM is the estimate; valid only when Found.
	DistanceM float64
	// Found is false when a reference signal was not present (⊥) —
	// devices too far, a wall between them, or interference.
	Found bool
	// AuthTimeSec is the modeled wall-clock latency.
	AuthTimeSec float64
}

// EnergyReport summarizes consumption since the deployment was created.
type EnergyReport struct {
	// TotalJoules is the cumulative energy.
	TotalJoules float64
	// BatteryPercent is the share of a Galaxy-S4-class battery used.
	BatteryPercent float64
	// Breakdown is a human-readable per-component split.
	Breakdown string
	// Authentications counts the sessions accounted.
	Authentications int
}

// Deployment is a registered PIANO pairing: an authenticating device
// guarded by a vouching device inside a simulated acoustic scene.
//
// A Deployment is safe for concurrent use, but its sessions serialize
// under an internal lock: each authentication resets the devices' clocks
// and draws from the deployment's single RNG stream, so only one session
// can be in flight per pairing (exactly as on real hardware, where one
// speaker pair runs one protocol at a time). To run many sessions
// concurrently, use a Service, which gives every session its own RNG
// stream and batches them through shared detection machinery.
type Deployment struct {
	cfg     Config
	coreCfg core.Config
	// mu serializes sessions: device clock resets and RNG draws inside a
	// session must not interleave with another session's.
	mu          sync.Mutex
	auth, vouch *device.Device
	a           *core.Authenticator
	rng         *rand.Rand
	ledger      *energy.Ledger
	battery     *energy.Battery
	interferers []*device.Device
	authCount   int
}

// NewDeployment performs the registration phase: builds both devices and
// pairs them over (simulated) Bluetooth with a real key agreement.
func NewDeployment(cfg Config, authSpec, vouchSpec DeviceSpec) (*Deployment, error) {
	if cfg.ThresholdM == 0 {
		cfg.ThresholdM = 1.0
	}
	if cfg.Environment == 0 {
		cfg.Environment = Office
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	coreCfg := core.DefaultConfig()
	coreCfg.World.Environment = cfg.Environment.internal()
	coreCfg.ThresholdM = cfg.ThresholdM

	mk := func(spec DeviceSpec, fallback string) (*device.Device, error) {
		return device.NewSessionDevice(spec.Name, fallback, spec.X, spec.Y, spec.Room, spec.ClockSkewPPM)
	}
	auth, err := mk(authSpec, "authenticating-device")
	if err != nil {
		return nil, fmt.Errorf("piano: %w", err)
	}
	vouch, err := mk(vouchSpec, "vouching-device")
	if err != nil {
		return nil, fmt.Errorf("piano: %w", err)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	a, err := core.NewAuthenticator(coreCfg, auth, vouch, rng)
	if err != nil {
		return nil, fmt.Errorf("piano: %w", err)
	}

	d := &Deployment{cfg: cfg, coreCfg: coreCfg, auth: auth, vouch: vouch, a: a, rng: rng}
	if cfg.TrackEnergy {
		ledger, err := energy.NewLedger(energy.DefaultPowerModel())
		if err != nil {
			return nil, fmt.Errorf("piano: %w", err)
		}
		battery, err := energy.NewBattery(energy.GalaxyS4CapacityJoules)
		if err != nil {
			return nil, fmt.Errorf("piano: %w", err)
		}
		a.TrackEnergy(ledger, battery)
		d.ledger, d.battery = ledger, battery
	}
	return d, nil
}

// SetThreshold tunes τ (personalization; 0.5 m for cautious users, etc.).
func (d *Deployment) SetThreshold(m float64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.a.SetThreshold(m); err != nil {
		return fmt.Errorf("piano: %w", err)
	}
	return nil
}

// Threshold returns the current τ.
func (d *Deployment) Threshold() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.a.Config().ThresholdM
}

// MoveVouchingDevice relocates the vouching device (the user walked
// somewhere, possibly into another room).
func (d *Deployment) MoveVouchingDevice(x, y float64, room int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.vouch.SetPosition([2]float64{x, y})
	d.vouch.SetRoom(room)
}

// MoveAuthDevice relocates the authenticating device.
func (d *Deployment) MoveAuthDevice(x, y float64, room int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.auth.SetPosition([2]float64{x, y})
	d.auth.SetRoom(room)
}

// TrueDistance returns the actual geometric distance between the devices.
func (d *Deployment) TrueDistance() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.auth.DistanceTo(d.vouch)
}

// AddInterferer places another PIANO user's device in the scene. During
// every subsequent authentication it plays its own randomized reference
// signals at random times (the multi-user scenario of Fig. 2a).
func (d *Deployment) AddInterferer(name string, x, y float64) error {
	if name == "" {
		return errors.New("piano: interferer needs a name")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	dev, err := attack.NewAttackerDevice(name, [2]float64{x, y}, d.auth.Room())
	if err != nil {
		return fmt.Errorf("piano: %w", err)
	}
	d.interferers = append(d.interferers, dev)
	return nil
}

// extraPlays assembles the interference for one session.
func (d *Deployment) extraPlays() ([]core.ExtraPlay, error) {
	if len(d.interferers) == 0 {
		return nil, nil
	}
	plays, err := attack.Interference(d.coreCfg.Signal, d.interferers, d.rng)
	if err != nil {
		return nil, fmt.Errorf("piano: %w", err)
	}
	return plays, nil
}

// Authenticate runs one complete PIANO authentication. Concurrent calls
// serialize (see Deployment).
func (d *Deployment) Authenticate() (*Decision, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	plays, err := d.extraPlays()
	if err != nil {
		return nil, err
	}
	res, err := d.a.Authenticate(plays...)
	if err != nil {
		return nil, fmt.Errorf("piano: %w", err)
	}
	d.authCount++
	dec := &Decision{Granted: res.Granted, Reason: res.Reason, DistanceM: res.DistanceM}
	if res.Session != nil {
		dec.AuthTimeSec = res.Session.AuthTimeSec
	}
	return dec, nil
}

// MeasureDistance runs the ACTION protocol once without an access
// decision. Concurrent calls serialize (see Deployment).
func (d *Deployment) MeasureDistance() (*Measurement, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	plays, err := d.extraPlays()
	if err != nil {
		return nil, err
	}
	sr, err := d.a.Measure(plays...)
	if err != nil {
		return nil, fmt.Errorf("piano: %w", err)
	}
	d.authCount++
	return &Measurement{DistanceM: sr.DistanceM, Found: sr.Found, AuthTimeSec: sr.AuthTimeSec}, nil
}

// Energy returns the consumption report (zero-valued when the deployment
// was created without TrackEnergy).
func (d *Deployment) Energy() EnergyReport {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.ledger == nil {
		return EnergyReport{Authentications: d.authCount}
	}
	return EnergyReport{
		TotalJoules:     d.ledger.TotalJoules(),
		BatteryPercent:  d.battery.UsedPercent(),
		Breakdown:       d.ledger.Breakdown(),
		Authentications: d.authCount,
	}
}
