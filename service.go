package piano

import (
	"context"
	"fmt"
	"time"

	"github.com/acoustic-auth/piano/internal/acoustic"
	"github.com/acoustic-auth/piano/internal/core"
	"github.com/acoustic-auth/piano/internal/service"
)

// Typed service failure modes, re-exported from the service
// implementation; match with errors.Is. See ARCHITECTURE.md "Failure
// semantics" for the full taxonomy (these plus ctx.Err() passthrough).
var (
	// ErrClosed: the request arrived (or was still queued) after Close
	// began draining.
	ErrClosed = service.ErrClosed
	// ErrOverloaded: admission control shed the request — the service was
	// saturated past MaxQueueWait/MaxQueueDepth. Back off and retry.
	ErrOverloaded = service.ErrOverloaded
	// ErrInternal: the session died to a recovered panic; the service
	// itself keeps serving. The *service.InternalError in the chain
	// carries the panic value and stack.
	ErrInternal = service.ErrInternal
	// ErrConfig: NewService (or a RetryPolicy) rejected its configuration;
	// the message names the offending field.
	ErrConfig = service.ErrConfig
	// ErrSessionReaped is the category sentinel for lifecycle-watchdog
	// resolutions: errors.Is matches it for both ErrSessionStalled and
	// ErrSessionExpired.
	ErrSessionReaped = service.ErrSessionReaped
	// ErrSessionStalled: the gap between successful Feed calls (or between
	// open and the first Feed) exceeded SessionIdleTimeout, and the
	// watchdog resolved the session, releasing its slot.
	ErrSessionStalled = service.ErrSessionStalled
	// ErrSessionExpired: the session stayed unresolved past
	// SessionMaxLifetime — however actively it was fed — and the watchdog
	// resolved it.
	ErrSessionExpired = service.ErrSessionExpired
)

// ServiceConfig configures a long-lived authentication Service.
type ServiceConfig struct {
	// Environment is the default ambient scenario (requests may override).
	// Default: Office.
	Environment Environment
	// ThresholdM is the default authentication threshold τ in meters
	// (requests may override). Default: 1.0.
	ThresholdM float64
	// Workers sizes the shared detection worker pool. Default: GOMAXPROCS.
	Workers int
	// MaxSessions bounds how many sessions run concurrently; further
	// Authenticate calls wait for a slot. Default: 4 × Workers.
	MaxSessions int
	// MaxQueueWait bounds how long a request may wait for a session slot
	// before being shed with ErrOverloaded. Default (0): wait
	// indefinitely (a request context can still cancel the wait).
	MaxQueueWait time.Duration
	// MaxQueueDepth bounds how many requests may queue for a slot at
	// once; requests beyond it shed immediately with ErrOverloaded.
	// Default (0): unbounded.
	MaxQueueDepth int
	// SessionIdleTimeout bounds the gap between successful Feed calls on a
	// streaming session (and between open and the first Feed). A session
	// idle past it is resolved ErrSessionStalled by the lifecycle watchdog
	// and its slot released — the defense against clients that vanish
	// mid-feed without closing. Time inside an in-flight Feed or
	// Result/TryResult call does not count as idle. Default (0): no idle
	// bound; negative values are rejected with ErrConfig.
	SessionIdleTimeout time.Duration
	// SessionMaxLifetime bounds a streaming session's total open-to-
	// resolution time, however actively it is fed; past it the watchdog
	// resolves the session ErrSessionExpired. Default (0): no lifetime
	// bound; negative values are rejected with ErrConfig.
	SessionMaxLifetime time.Duration
	// ShardCount splits the service's detection machinery (worker pool,
	// detector scratch, FFT plans) into independent per-worker-group
	// shards; sessions are pinned to one shard at admission, so concurrent
	// sessions stop contending on a single scan queue and workspace
	// freelist — the multi-core scaling knob. Workers remains the TOTAL
	// worker budget, spread across shards (at least one each). Decisions
	// are bit-identical at any ShardCount. Default (0): one shard, the
	// pre-sharding layout; negative values are rejected with ErrConfig.
	ShardCount int
	// ReorderWindow bounds, in samples, how far ahead of the in-order
	// frontier a framed session (FeedFrame) buffers out-of-order audio
	// per role; past it the oldest gap is declared lost instead of
	// waiting for a retransmission. A pure function of the frame
	// sequence, so framed decisions stay deterministic. Default (0): the
	// frame package's default window; negative values are rejected with
	// ErrConfig.
	ReorderWindow int
	// GapRepairTimeout bounds how long a framed session waits in wall-
	// clock time for a retransmission to repair a reassembly gap before
	// the lifecycle watchdog declares it lost. Default (0): no wall-clock
	// deadline (gaps expire only structurally or at FinishFeed); negative
	// values are rejected with ErrConfig.
	GapRepairTimeout time.Duration
}

// DefaultServiceConfig mirrors DefaultConfig for the service surface:
// office scenario, τ = 1 m, pool sized to the machine.
func DefaultServiceConfig() ServiceConfig {
	return ServiceConfig{Environment: Office, ThresholdM: 1.0}
}

// AuthRequest is one authentication session submitted to a Service.
type AuthRequest struct {
	// Auth and Vouch place the authenticating and vouching devices.
	Auth, Vouch DeviceSpec
	// Interferers are other PIANO users' devices sharing the space; each
	// plays two randomized reference signals at random times during the
	// session (the multi-user scenario of Fig. 2a).
	Interferers []DeviceSpec
	// Seed drives all of this session's randomness (0 → 1). Equal
	// requests with equal seeds decide identically, no matter how many
	// other sessions run at the same time.
	Seed int64
	// ThresholdM overrides the service's τ for this session (0 → service
	// default).
	ThresholdM float64
	// Environment overrides the ambient scenario (0 → service default).
	Environment Environment
}

// Service is a long-lived, concurrency-safe PIANO authentication server —
// the deployment shape of an always-on voice-powered hub serving many
// users. Unlike a Deployment (one pairing, one session at a time), a
// Service accepts concurrent Authenticate calls and batches all of their
// signal-detection work through one bounded worker pool with FFT plans
// pinned per window length, so scratch buffers stay pooled and caches stay
// hot under load. Every session still gets its own seeded RNG stream:
// results are bit-identical to running the same request serially.
type Service struct {
	svc *service.AuthService
}

// NewService builds and starts a Service.
func NewService(cfg ServiceConfig) (*Service, error) {
	if cfg.Environment == 0 {
		cfg.Environment = Office
	}
	if cfg.ThresholdM == 0 {
		cfg.ThresholdM = 1.0
	}
	coreCfg := core.DefaultConfig()
	coreCfg.World.Environment = cfg.Environment.internal()
	coreCfg.ThresholdM = cfg.ThresholdM
	svc, err := service.New(service.Config{
		Core:               coreCfg,
		Workers:            cfg.Workers,
		MaxSessions:        cfg.MaxSessions,
		MaxQueueWait:       cfg.MaxQueueWait,
		MaxQueueDepth:      cfg.MaxQueueDepth,
		SessionIdleTimeout: cfg.SessionIdleTimeout,
		SessionMaxLifetime: cfg.SessionMaxLifetime,
		ShardCount:         cfg.ShardCount,
		ReorderWindow:      cfg.ReorderWindow,
		GapRepairTimeout:   cfg.GapRepairTimeout,
	})
	if err != nil {
		return nil, fmt.Errorf("piano: %w", err)
	}
	return &Service{svc: svc}, nil
}

// Authenticate runs one complete PIANO session for the requested device
// pair and returns the access decision. Safe to call from any number of
// goroutines; calls beyond the configured concurrency bound wait for a
// session slot (subject to MaxQueueWait/MaxQueueDepth). It is
// AuthenticateContext with an uncancellable context.
func (s *Service) Authenticate(req AuthRequest) (*Decision, error) {
	return s.AuthenticateContext(context.Background(), req)
}

// AuthenticateContext is Authenticate under a context: cancellation is
// cooperative (observed between protocol steps and between scan hop
// blocks), so an abandoned call frees its session slot and pool workers
// mid-scan and returns ctx.Err(). Sessions that complete are bit-identical
// to uncancelled runs. Typed failures: ErrOverloaded (admission shed),
// ErrClosed (service draining/closed), ErrInternal (recovered panic; the
// service keeps serving).
func (s *Service) AuthenticateContext(ctx context.Context, req AuthRequest) (*Decision, error) {
	sreq, err := convertRequest(req)
	if err != nil {
		return nil, err
	}
	res, err := s.svc.AuthenticateContext(ctx, sreq)
	if err != nil {
		// The typed sentinels and ctx.Err() pass through unwrapped so
		// callers can match them directly; anything else gets the usual
		// package prefix.
		if ctxe := ctx.Err(); ctxe != nil && err == ctxe {
			return nil, err
		}
		return nil, fmt.Errorf("piano: %w", err)
	}
	return toDecision(res), nil
}

// toDecision converts an internal session result to the public decision
// shape (shared by the batch and streaming paths).
func toDecision(res *core.Result) *Decision {
	dec := &Decision{Granted: res.Granted, Reason: res.Reason, DistanceM: res.DistanceM}
	if res.Session != nil {
		dec.AuthTimeSec = res.Session.AuthTimeSec
		dec.Degraded = res.Session.Degraded
	}
	return dec
}

// convertRequest validates a public AuthRequest at the public enum (the
// internal conversion would otherwise silently map unknown environments to
// Quiet) and translates it to the internal service request — shared by the
// batch (AuthenticateContext) and streaming (OpenSessionContext) paths so
// the two interpret requests identically.
func convertRequest(req AuthRequest) (service.Request, error) {
	var env acoustic.Environment
	if req.Environment != 0 {
		if req.Environment < Quiet || req.Environment > Street {
			return service.Request{}, fmt.Errorf("piano: unknown environment %d (known: Quiet through Street, or 0 for the service default)", int(req.Environment))
		}
		env = req.Environment.internal()
	}
	conv := func(d DeviceSpec) service.DeviceSpec {
		return service.DeviceSpec{Name: d.Name, X: d.X, Y: d.Y, Room: d.Room, ClockSkewPPM: d.ClockSkewPPM}
	}
	sreq := service.Request{
		Auth:        conv(req.Auth),
		Vouch:       conv(req.Vouch),
		Seed:        req.Seed,
		ThresholdM:  req.ThresholdM,
		Environment: env,
	}
	for _, in := range req.Interferers {
		sreq.Interferers = append(sreq.Interferers, conv(in))
	}
	return sreq, nil
}

// Sessions returns the number of sessions the service has completed.
func (s *Service) Sessions() uint64 { return s.svc.Sessions() }

// Shards returns the number of worker-group shards the service runs (1
// when ShardCount was left at the default).
func (s *Service) Shards() int { return s.svc.ShardCount() }

// Close drains in-flight sessions and releases the service's workers.
// Subsequent Authenticate calls fail.
func (s *Service) Close() { s.svc.Close() }
