package piano

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// undersizedService builds a service deliberately too small for the load
// the retry tests throw at it: one worker, one session slot, a one-deep
// admission queue with a short wait — most of a concurrent burst sheds with
// ErrOverloaded at the door.
func undersizedService(t *testing.T) *Service {
	t.Helper()
	cfg := DefaultServiceConfig()
	cfg.Workers = 1
	cfg.MaxSessions = 1
	cfg.MaxQueueDepth = 1
	cfg.MaxQueueWait = 2 * time.Millisecond
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// burst fires `clients` concurrent authentication calls and reports the
// outcomes. Every failure must be typed — a load test's first job is to
// prove no session ever ends in an unclassifiable state.
func burst(t *testing.T, svc *Service, clients int, policy *RetryPolicy) (completed, shed int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := AuthRequest{
				Auth:  DeviceSpec{Name: "hub", X: 0, Y: 0, ClockSkewPPM: 15},
				Vouch: DeviceSpec{Name: fmt.Sprintf("watch-%d", i), X: 0.3 + 0.1*float64(i), Y: 0, ClockSkewPPM: -20},
				Seed:  int64(300 + i),
			}
			if policy != nil {
				p := *policy
				p.Seed = req.Seed // per-client schedule, desynchronized but replayable
				_, errs[i] = svc.AuthenticateWithRetry(context.Background(), req, p)
			} else {
				_, errs[i] = svc.Authenticate(req)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		switch {
		case err == nil:
			completed++
		case errors.Is(err, ErrOverloaded):
			shed++
		default:
			t.Errorf("client %d ended untyped: %v", i, err)
		}
	}
	return completed, shed
}

// TestRetryLoadRecoversSheds is the client-backoff integration test: a
// burst of concurrent clients against an undersized service sheds most of
// the burst at admission; the same burst under AuthenticateWithRetry
// recovers a measured fraction of those sheds by backing off and
// re-offering while the service drains. Every session — retried or not —
// ends typed-or-success.
func TestRetryLoadRecoversSheds(t *testing.T) {
	const clients = 12
	svc := undersizedService(t)
	defer svc.Close()

	// Pass 1, no retries: with one slot and a one-deep queue, at least
	// clients-2 of the burst must shed at the door.
	completed, shed := burst(t, svc, clients, nil)
	if shed < clients-2 {
		t.Fatalf("undersized service shed only %d/%d of an unretried burst", shed, clients)
	}
	if completed+shed != clients {
		t.Fatalf("sessions unaccounted for: %d completed + %d shed != %d", completed, shed, clients)
	}

	// Pass 2, with retries: generous attempt budget, jittered backoff so the
	// shed clients re-offer staggered instead of stampeding back in step.
	policy := &RetryPolicy{
		MaxAttempts: 10,
		BaseDelay:   5 * time.Millisecond,
		MaxDelay:    80 * time.Millisecond,
		Jitter:      0.4,
	}
	completedR, shedR := burst(t, svc, clients, policy)
	if completedR+shedR != clients {
		t.Fatalf("retried sessions unaccounted for: %d completed + %d shed != %d", completedR, shedR, clients)
	}
	if completedR <= completed {
		t.Fatalf("retries recovered nothing: %d/%d completed without retry, %d/%d with",
			completed, clients, completedR, clients)
	}
	if shedR >= shed {
		t.Fatalf("retries did not reduce sheds: %d without, %d with", shed, shedR)
	}
	t.Logf("unretried: %d/%d completed; with retry: %d/%d (recovered %d sheds)",
		completed, clients, completedR, clients, completedR-completed)
}

// TestRetryLoadScheduleDeterministic: the backoff schedule a shed client
// walks is a pure function of (policy, seed) — replaying a load run replays
// its retry timing too.
func TestRetryLoadScheduleDeterministic(t *testing.T) {
	p := RetryPolicy{
		MaxAttempts: 10,
		BaseDelay:   5 * time.Millisecond,
		MaxDelay:    80 * time.Millisecond,
		Jitter:      0.4,
		Seed:        307,
	}.withDefaults()
	a, b := rand.New(rand.NewSource(p.Seed)), rand.New(rand.NewSource(p.Seed))
	other := rand.New(rand.NewSource(p.Seed + 1))
	diverged := false
	for i := 0; i < p.MaxAttempts-1; i++ {
		da, db := p.delay(i, a), p.delay(i, b)
		if da != db {
			t.Fatalf("retry %d: delay %v != %v for the same seed", i, da, db)
		}
		if da != p.delay(i, other) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("neighboring seeds drew identical jittered schedules")
	}
}
