package piano

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"github.com/acoustic-auth/piano/internal/faultinject"
	"github.com/acoustic-auth/piano/internal/service"
)

// fastPolicy keeps retry tests quick: microsecond backoff, no jitter.
func fastPolicy(attempts int) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: attempts,
		BaseDelay:   10 * time.Microsecond,
		MaxDelay:    100 * time.Microsecond,
	}
}

// TestRetryRecoversFromTransientOverload: shed twice at admission, the
// third attempt goes through, and the decision matches the unretried one
// bit-for-bit.
func TestRetryRecoversFromTransientOverload(t *testing.T) {
	svc, err := NewService(DefaultServiceConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	req := serviceRequests()[0]
	want, err := svc.Authenticate(req)
	if err != nil {
		t.Fatal(err)
	}

	faultinject.Enable(1)
	faultinject.Arm(faultinject.SiteServiceAcquire, faultinject.Fault{
		Action: faultinject.ActError, Err: service.ErrOverloaded, Times: 2,
	})
	dec, err := svc.AuthenticateWithRetry(context.Background(), req, fastPolicy(4))
	hits := faultinject.Hits(faultinject.SiteServiceAcquire)
	faultinject.Disable()
	if err != nil {
		t.Fatalf("retry across transient overload failed: %v", err)
	}
	if hits != 2 {
		t.Fatalf("admission fault fired %d times, want 2", hits)
	}
	if dec.Granted != want.Granted || dec.DistanceM != want.DistanceM {
		t.Fatalf("retried decision diverged: %+v vs %+v", dec, want)
	}
}

// TestRetryExhaustionKeepsSentinel: when every attempt is shed, the
// returned error reports the attempt budget and still matches
// ErrOverloaded via errors.Is.
func TestRetryExhaustionKeepsSentinel(t *testing.T) {
	svc, err := NewService(DefaultServiceConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	req := serviceRequests()[0]

	faultinject.Enable(1)
	faultinject.Arm(faultinject.SiteServiceAcquire, faultinject.Fault{
		Action: faultinject.ActError, Err: service.ErrOverloaded,
	})
	_, err = svc.AuthenticateWithRetry(context.Background(), req, fastPolicy(3))
	hits := faultinject.Hits(faultinject.SiteServiceAcquire)
	faultinject.Disable()
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("exhausted retries returned %v, want ErrOverloaded in the chain", err)
	}
	if hits != 3 {
		t.Fatalf("admission attempted %d times, want exactly MaxAttempts=3", hits)
	}
}

// TestRetryOnlyOverloadRetries: final failures — ErrClosed here — return
// immediately after one attempt; backoff never applies to them.
func TestRetryOnlyOverloadRetries(t *testing.T) {
	svc, err := NewService(DefaultServiceConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	req := serviceRequests()[0]

	faultinject.Enable(1)
	faultinject.Arm(faultinject.SiteServiceAcquire, faultinject.Fault{
		Action: faultinject.ActError, Err: service.ErrClosed,
	})
	_, err = svc.AuthenticateWithRetry(context.Background(), req, fastPolicy(5))
	hits := faultinject.Hits(faultinject.SiteServiceAcquire)
	faultinject.Disable()
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
	if hits != 1 {
		t.Fatalf("non-retryable failure attempted %d times, want 1", hits)
	}

	// Validation failures don't consume attempts either.
	bad := req
	bad.Environment = 99
	if _, err := svc.AuthenticateWithRetry(context.Background(), bad, fastPolicy(5)); err == nil {
		t.Fatal("invalid request accepted")
	}
}

// TestRetryCtxCancelDuringBackoff: a context canceled while the policy is
// sleeping aborts the wait immediately with ctx.Err().
func TestRetryCtxCancelDuringBackoff(t *testing.T) {
	svc, err := NewService(DefaultServiceConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	req := serviceRequests()[0]

	faultinject.Enable(1)
	faultinject.Arm(faultinject.SiteServiceAcquire, faultinject.Fault{
		Action: faultinject.ActError, Err: service.ErrOverloaded,
	})
	defer faultinject.Disable()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = svc.AuthenticateWithRetry(ctx, req, RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Hour,
		MaxDelay:    time.Hour,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("cancel during backoff took %v; the hour-long timer was not interrupted", took)
	}
}

// TestRetryPolicyValidation: negative fields and out-of-range jitter are
// rejected with ErrConfig before any attempt runs.
func TestRetryPolicyValidation(t *testing.T) {
	svc, err := NewService(DefaultServiceConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	req := serviceRequests()[0]

	for i, p := range []RetryPolicy{
		{MaxAttempts: -1},
		{BaseDelay: -time.Second},
		{MaxDelay: -time.Second},
		{BaseDelay: time.Second, MaxDelay: time.Millisecond},
		{Multiplier: -2},
		{Multiplier: 0.5},
		{Jitter: -0.1},
		{Jitter: 1},
	} {
		if _, err := svc.AuthenticateWithRetry(context.Background(), req, p); !errors.Is(err, ErrConfig) {
			t.Errorf("policy %d %+v: got %v, want ErrConfig", i, p, err)
		}
	}
}

// TestRetryDeterministicBackoff: equal seeds draw equal jittered delays;
// different seeds diverge.
func TestRetryDeterministicBackoff(t *testing.T) {
	schedule := func(seed int64) []time.Duration {
		p := RetryPolicy{Jitter: 0.5, Seed: seed}.withDefaults()
		rng := rand.New(rand.NewSource(p.Seed))
		var ds []time.Duration
		for i := 0; i < 6; i++ {
			ds = append(ds, p.delay(i, rng))
		}
		return ds
	}
	a, b := schedule(7), schedule(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 7 replay diverged at retry %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := schedule(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 drew identical schedules; jitter is not seed-sensitive")
	}
	// The undithered schedule grows geometrically to the cap.
	p := RetryPolicy{}.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond}
	for i, w := range want {
		if d := p.delay(i, rng); d != w {
			t.Fatalf("retry %d delay = %v, want %v", i, d, w)
		}
	}
	for i := 10; i < 13; i++ {
		if d := p.delay(i, rng); d != 2*time.Second {
			t.Fatalf("retry %d delay = %v, want the 2s cap", i, d)
		}
	}
}

// TestServiceLifecycleConfigSurfaces: the public ServiceConfig passes the
// lifecycle knobs through — a negative bound is rejected with ErrConfig,
// and an armed idle bound reaps an abandoned public streaming session with
// the re-exported sentinels.
func TestServiceLifecycleConfigSurfaces(t *testing.T) {
	bad := DefaultServiceConfig()
	bad.SessionIdleTimeout = -time.Second
	if _, err := NewService(bad); !errors.Is(err, ErrConfig) {
		t.Fatalf("negative SessionIdleTimeout: got %v, want ErrConfig", err)
	}

	cfg := DefaultServiceConfig()
	cfg.SessionIdleTimeout = 25 * time.Millisecond
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	sess, err := svc.OpenSession(serviceRequests()[0])
	if err != nil {
		t.Fatal(err)
	}
	// Abandon it: never feed. The watchdog must resolve it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, _, err := sess.TryResult()
		if err != nil {
			if !errors.Is(err, ErrSessionStalled) || !errors.Is(err, ErrSessionReaped) {
				t.Fatalf("abandoned session resolved %v, want ErrSessionStalled (unwrapped passthrough)", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watchdog never reaped the abandoned public session")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The slot is back: a fresh batch call succeeds promptly.
	if _, err := svc.Authenticate(serviceRequests()[0]); err != nil {
		t.Fatalf("service unusable after a reaped session: %v", err)
	}
}
